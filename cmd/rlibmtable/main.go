// Command rlibmtable inspects the committed generated tables: the
// piecewise polynomial structure of each function (sub-domain counts,
// degrees, coefficient storage) and the per-function generation
// statistics — a human-readable view of what cmd/rlibmgen produced,
// useful when debugging a regeneration or auditing table sizes against
// the paper's storage-budget discussion (§4.2).
//
// Usage:
//
//	go run ./cmd/rlibmtable [-type float32|posit32|bfloat16|float16|posit16]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rlibm32/internal/libm"
	"rlibm32/internal/rangered"
)

func main() {
	typ := flag.String("type", "float32", "variant to inspect")
	flag.Parse()

	var names []string
	switch *typ {
	case "posit32", "posit16":
		names = rangered.PositNames
	default:
		names = rangered.FloatNames
	}

	fmt.Printf("generated tables (%s)\n", *typ)
	fmt.Printf("%-8s %-12s %10s %10s\n", "f(x)", "structure", "coeffs", "bytes")
	totalBytes := 0
	for _, name := range names {
		info, ok := libm.Describe(*typ, name)
		if !ok {
			fmt.Printf("%-8s %s\n", name, "(not generated)")
			continue
		}
		fmt.Printf("%-8s %-12s %10d %10d\n", name, info.Structure, info.Coeffs, info.Bytes)
		totalBytes += info.Bytes
	}
	fmt.Printf("%-8s %23d %10d\n", "total", 0, totalBytes)
	fmt.Println()

	// Generation statistics for the variant (Table 3 data).
	var stats []map[string]any
	if err := json.Unmarshal([]byte(libm.GenStatsJSON), &stats); err != nil {
		fmt.Fprintln(os.Stderr, "stats unavailable:", err)
		return
	}
	fmt.Println("generation statistics (from the committed run):")
	for _, s := range stats {
		if s["Variant"] == *typ {
			fmt.Printf("  %-8v gen=%6.1fs oracle=%6.1fs LP calls=%v rounds=%v\n",
				s["Name"],
				toSec(s["GenTime"]), toSec(s["OracleTime"]),
				s["LPCalls"], s["OuterRounds"])
		}
	}
}

func toSec(v any) float64 {
	f, _ := v.(float64)
	return f / 1e9
}
