// Command rlibmd serves the generated correctly rounded libraries over
// a compact binary TCP protocol (see internal/server). Concurrent
// small requests for the same (function, representation) are coalesced
// into large batches before hitting the EvalSlice kernels; overload is
// shed with explicit BUSY responses; results are bit-exact with the
// in-process library.
//
//	rlibmd -addr 127.0.0.1:7043 -admin 127.0.0.1:7044
//
// The admin listener exports Prometheus text metrics (per-function
// request/value/busy counts, latency histograms, coalescing stats,
// oracle cache and Ziv-ladder counters) at /metrics, the same data in
// legacy expvar shape at /debug/vars, and the standard pprof endpoints
// at /debug/pprof/. The always-on flight recorder keeps the last few
// thousand wide events in memory, serves them at /debug/flight, and
// dumps them to -flight-dir as JSON when an anomaly trigger fires
// (SIGQUIT, a sustained BUSY fraction, or an external hit on
// /debug/flight/trigger). SIGINT/SIGTERM trigger a graceful drain:
// in-flight requests finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rlibm "rlibm32"
	"rlibm32/internal/libm"
	"rlibm32/internal/oracle"
	"rlibm32/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7043", "serve address")
	admin := flag.String("admin", "", "admin (expvar + pprof) address; empty disables")
	workers := flag.Int("workers", 0, "evaluation workers (default GOMAXPROCS)")
	maxFrame := flag.Int("max-frame", server.DefaultMaxFrame, "max frame payload bytes")
	maxBatch := flag.Int("max-batch", 1<<16, "max values per coalesced kernel dispatch")
	maxInflight := flag.Int64("max-inflight", 1<<20, "max admitted-but-unevaluated values before BUSY shedding")
	connInflight := flag.Int("conn-inflight", 64, "max pipelined requests in flight per connection")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "per-frame read deadline")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "per-response write deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	flightDir := flag.String("flight-dir", ".", "directory for flight-recorder anomaly dumps; empty keeps the ring in-memory only")
	flightEvents := flag.Int("flight-events", 4096, "wide events retained in the flight-recorder ring")
	busyDumpFrac := flag.Float64("busy-dump-frac", 0.5, "shed fraction that triggers a flight dump (negative disables)")
	flag.Parse()

	s := server.New(server.Config{
		Addr:         *addr,
		Workers:      *workers,
		MaxFrame:     *maxFrame,
		MaxBatch:     *maxBatch,
		MaxInflight:  *maxInflight,
		ConnInflight: *connInflight,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		FlightDir:    *flightDir,
		FlightEvents: *flightEvents,
		BusyDumpFrac: *busyDumpFrac,
	})
	s.Metrics().Publish()
	// Everything the process observes lands on one registry: the oracle
	// cache/Ziv counters (exercised by any server-side verification
	// tooling) and the EvalSlice batch counters join the server's own
	// series on /metrics.
	oracle.EnableTelemetry(s.Metrics().Registry())
	rlibm.EnableTelemetry(s.Metrics().Registry())

	if *admin != "" {
		adminSrv := &http.Server{Addr: *admin, Handler: s.AdminHandler()}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("rlibmd: admin listener: %v", err)
			}
		}()
		defer adminSrv.Close()
	}

	// SIGQUIT is the operator's "what just happened" button: dump the
	// flight ring and keep serving.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			if path, ok := s.Flight().TriggerDump("sigquit"); ok {
				log.Printf("rlibmd: flight recorder dumped to %s", path)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()

	nfuncs := 0
	for _, v := range libm.Variants() {
		nfuncs += len(libm.Names(v))
	}
	log.Printf("rlibmd: serving %d functions on %s", nfuncs, *addr)

	select {
	case err := <-errc:
		if err != nil && err != server.ErrServerClosed {
			log.Fatalf("rlibmd: %v", err)
		}
	case got := <-sig:
		log.Printf("rlibmd: %v: draining (timeout %s)", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Fatalf("rlibmd: drain failed: %v", err)
		}
		fmt.Println("rlibmd: drained cleanly")
	}
}
