// Command rlibmsweep reproduces Figure 5: the performance of the
// logarithm functions as the number of piecewise sub-domains grows from
// 2^0 (a single polynomial) to 2^12, reported as speedup relative to
// the single polynomial. At each depth the harness regenerates the
// function at the forced splitting level, picking the lowest polynomial
// degree that still satisfies every constraint — the degree drops are
// the circles the paper draws on Figure 5.
//
// The reduced-interval constraints are computed once per function and
// shared across depths (the oracle dominates cost). With -lattice the
// constraint set additionally includes the correctness harness's input
// lattice, which is the denser regime where the degree-vs-table trade
// appears.
//
// Usage:
//
//	go run ./cmd/rlibmsweep [-inputs N] [-lattice] [-n len] [-reps R] [-max 12]
package main

import (
	"flag"
	"fmt"
	"os"

	"rlibm32/internal/checks"
	"rlibm32/internal/gentool"
	"rlibm32/internal/libm"
	"rlibm32/internal/perf"
	"rlibm32/internal/polygen"
	"rlibm32/internal/rangered"
)

func main() {
	inputs := flag.Int("inputs", 40000, "generation sample size")
	n := flag.Int("n", 1<<16, "benchmark array length")
	reps := flag.Int("reps", 8, "benchmark repetitions")
	maxBits := flag.Int("max", 12, "largest log2(sub-domain count)")
	lattice := flag.Bool("lattice", false, "also constrain on the correctness harness lattice (denser: forces the paper's degree-vs-table trade)")
	flag.Parse()

	var extra []float64
	if *lattice {
		for _, x := range checks.SampleFloat32(400000) {
			extra = append(extra, float64(x))
		}
	}

	ladders := [][]int{
		{1, 2},
		{1, 2, 3},
		{1, 2, 3, 4},
		{1, 2, 3, 4, 5},
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}

	for _, name := range []string{"ln", "log2", "log10"} {
		fmt.Printf("Figure 5 reproduction: %s speedup vs sub-domain count\n", name)
		fam, cons, err := gentool.Constraints(name, gentool.Config{
			Variant:       rangered.VFloat32,
			InputsPerFunc: *inputs,
			ExtraInputs:   extra,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("(%d reduced constraints)\n", len(cons[0]))
		fmt.Printf("%-6s %10s %10s %8s %6s\n", "2^n", "ns/call", "speedup", "degree", "drop")
		var baseNs float64
		prevDeg := -1
		for bits := 0; bits <= *maxBits; bits += 2 {
			var pw *polygen.Piecewise
			deg := 0
			for _, terms := range ladders {
				var genErr error
				pw, _, genErr = polygen.Generate(
					append([]polygen.Constraint(nil), cons[0]...),
					polygen.Config{
						Terms:        terms,
						MinIndexBits: uint(bits),
						MaxIndexBits: uint(bits),
					})
				if genErr == nil {
					deg = terms[len(terms)-1]
					break
				}
				pw = nil
			}
			if pw == nil {
				fmt.Printf("2^%-4d %10s\n", bits, "infeasible")
				prevDeg = -1
				continue
			}
			ev := libm.Compile(fam, []*polygen.Piecewise{pw})
			f32 := func(x float32) float32 { return float32(ev(float64(x))) }
			xs := perf.Float32Inputs(name, *n)
			ns := perf.MeasureFloat32(f32, xs, *reps)
			if baseNs == 0 {
				baseNs = ns
			}
			drop := ""
			if prevDeg >= 0 && deg < prevDeg {
				drop = "o" // the paper's circle marker
			}
			prevDeg = deg
			fmt.Printf("2^%-4d %10.2f %9.2fx %8d %6s\n", bits, ns, baseNs/ns, deg, drop)
		}
		fmt.Println()
	}
}
