// Command rlibmbench reproduces Figures 3 and 4: the speedup of
// RLIBM-32's functions over each baseline library, one row per
// function plus a geometric mean, and the §4.3 batch-of-1024
// throughput comparison.
//
// With -roofline it instead runs the batch-kernel roofline harness:
// per function, the staged pipeline against both fused kernel paths
// and the selected path, next to the machine's measured memory and
// arithmetic ceilings — and a bit-exact parity gate over a mixed
// ordinary+special sweep that fails the process (exit 1) on any
// mismatch, which is what CI's bench-smoke job runs.
//
// Usage:
//
//	go run ./cmd/rlibmbench [-type float|posit|all] [-n inputs] [-reps R]
//	go run ./cmd/rlibmbench -roofline [-n inputs] [-reps R]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"rlibm32/internal/baselines"
	"rlibm32/internal/perf"
	"rlibm32/internal/rangered"
)

func main() {
	typ := flag.String("type", "all", "float, posit, or all")
	n := flag.Int("n", 1<<17, "input array length")
	reps := flag.Int("reps", 8, "repetitions per measurement")
	roofline := flag.Bool("roofline", false, "run the batch-kernel roofline harness (with parity gate) instead")
	flag.Parse()

	if *roofline {
		runRoofline(*n, *reps)
		return
	}

	if *typ == "float" || *typ == "all" {
		fmt.Println("Figure 3 reproduction: speedup of RLIBM-32 float32 functions")
		fmt.Printf("%-8s %10s", "f(x)", "rlibm ns")
		for _, l := range baselines.Float32Libraries {
			fmt.Printf(" %12s", l)
		}
		fmt.Println()
		geo := make(map[baselines.Library][]float64)
		for _, name := range rangered.FloatNames {
			row := fmt.Sprintf("%-8s", name)
			printed := false
			for i, lib := range baselines.Float32Libraries {
				s, ok := perf.CompareFloat32(lib, name, *n, *reps)
				if !ok {
					row += fmt.Sprintf(" %12s", "N/A")
					continue
				}
				if !printed {
					row = fmt.Sprintf("%-8s %9.1f", name, s.RlibmNs)
					for j := 0; j < i; j++ {
						row += fmt.Sprintf(" %12s", "N/A")
					}
					printed = true
				}
				row += fmt.Sprintf(" %11.2fx", s.Factor())
				geo[lib] = append(geo[lib], s.Factor())
			}
			fmt.Println(row)
		}
		fmt.Printf("%-8s %10s", "geomean", "")
		for _, lib := range baselines.Float32Libraries {
			fmt.Printf(" %11.2fx", geomean(geo[lib]))
		}
		fmt.Println()
		fmt.Println()
	}

	if *typ == "posit" || *typ == "all" {
		fmt.Println("Figure 4 reproduction: speedup of RLIBM-32 posit32 functions")
		fmt.Printf("%-8s %10s", "f(x)", "rlibm ns")
		for _, l := range baselines.Posit32Libraries {
			fmt.Printf(" %12s", l)
		}
		fmt.Println()
		geo := make(map[baselines.Library][]float64)
		for _, name := range rangered.PositNames {
			s0, ok := perf.ComparePosit(baselines.Posit32Libraries[0], name, *n, *reps)
			if !ok {
				continue
			}
			fmt.Printf("%-8s %9.1f %11.2fx", name, s0.RlibmNs, s0.Factor())
			geo[baselines.Posit32Libraries[0]] = append(geo[baselines.Posit32Libraries[0]], s0.Factor())
			for _, lib := range baselines.Posit32Libraries[1:] {
				s, ok := perf.ComparePosit(lib, name, *n, *reps)
				if !ok {
					fmt.Printf(" %12s", "N/A")
					continue
				}
				fmt.Printf(" %11.2fx", s.Factor())
				geo[lib] = append(geo[lib], s.Factor())
			}
			fmt.Println()
		}
		fmt.Printf("%-8s %10s", "geomean", "")
		for _, lib := range baselines.Posit32Libraries {
			fmt.Printf(" %11.2fx", geomean(geo[lib]))
		}
		fmt.Println()
		fmt.Println()
	}

	if *typ == "float" || *typ == "all" {
		fmt.Println("§4.3 batch kernels: scalar entry point vs EvalSlice")
		fmt.Printf("%-8s %11s %11s %10s\n", "f(x)", "scalar ns", "batch ns", "speedup")
		var factors []float64
		for _, name := range rangered.FloatNames {
			s, ok := perf.CompareBatch(name, *n, *reps)
			if !ok {
				continue
			}
			fmt.Printf("%-8s %10.1f  %10.1f  %8.2fx\n", name, s.ScalarNs, s.BatchNs, s.Factor())
			factors = append(factors, s.Factor())
		}
		fmt.Printf("%-8s %11s %11s %9.2fx\n", "geomean", "", "", geomean(factors))
	}
}

// runRoofline prints the roofline table and exits nonzero if any
// kernel path disagrees with the scalar evaluator on any input.
func runRoofline(n, reps int) {
	rl := perf.MeasureRoofline(n, reps)
	fmt.Printf("Batch-kernel roofline (n=%d, reps=%d)\n", n, reps)
	fmt.Printf("machine: mul-add %.3f ns/op, stream %.3f ns/value, kernel path %s (%s)\n\n",
		rl.MulAddNs, rl.StreamNs, rl.KernelPath, rl.KernelPathReason)
	fmt.Printf("%-8s %-11s %9s %9s %9s %9s %6s %9s %9s %7s %7s\n",
		"f(x)", "kind", "staged", "exact", "fma", "selected", "flops",
		"membound", "compbound", "%roof", "parity")
	bad := false
	for _, r := range rl.Rows {
		bound := math.Max(r.MemBoundNs, r.CompBoundNs)
		pct := 100 * bound / r.SelectedNs
		parity := "ok"
		if !r.ParityOK {
			parity = "FAIL"
			bad = true
		}
		fmt.Printf("%-8s %-11s %8.2f  %8.2f  %8.2f  %8.2f  %5d  %8.2f  %8.2f  %5.1f%% %7s\n",
			r.Func, r.Kind, r.StagedNs, r.ExactNs, r.FMANs, r.SelectedNs,
			r.Flops, r.MemBoundNs, r.CompBoundNs, pct, parity)
	}
	fmt.Println("\nns columns are ns/value; %roof = max(membound, compbound) / selected.")
	if bad {
		fmt.Println("PARITY FAILURE: a kernel path disagrees with the scalar evaluator")
		os.Exit(1)
	}
}

func geomean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range v {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}
