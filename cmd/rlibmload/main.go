// Command rlibmload is the load generator and correctness prober for
// rlibmd. It opens -conns connections, each sending batches of -batch
// raw bit patterns for a rotating set of functions, and reports
// throughput (values/s, requests/s) and request latency percentiles.
//
// By default each connection is synchronous: one request in flight,
// measuring unpipelined round-trip behavior. With -pipeline N each
// connection keeps N requests in flight through the client's
// multiplexed async API, which is how a throughput-oriented caller
// would drive the daemon — the summary line reports the same
// values/s and percentile fields so the two modes compare directly.
//
// With -verify (the default), every result bit pattern is compared
// against the in-process library, so a run doubles as an end-to-end
// bit-exactness check; any mismatch, protocol error or non-BUSY error
// frame makes the process exit non-zero. Mismatches are attributed to
// their (endpoint, type, function), with the first offending bit
// pattern printed, so a bad replica in a fleet is identified rather
// than drowned in a global counter. BUSY responses are counted and
// reported but are not failures — they are the server's designed load
// shedding; -max-busy-frac bounds the fraction of requests that may be
// shed before the run fails, and -min-rate sets a values/s floor for
// CI gating.
//
// -addr accepts a comma-separated list; connections round-robin across
// the endpoints, so one invocation can drive several rlibmd replicas
// or rlibmproxy front-ends and compare them in the per-endpoint
// summary.
//
// With -trace-frac F (0 < F <= 1), roughly that fraction of each
// connection's requests carries a distributed-trace context (protocol
// v2): the server — and, through a proxy, every backend the request
// visited — returns per-stage span events, and the run ends with an
// end-to-end latency waterfall (client issue/flush, proxy
// admit/ring-walk/forward, backend queue/coalesce/kernel).
// -trace-out writes the collected spans as one stitched Chrome-trace
// JSON (load into chrome://tracing or Perfetto; spans from every
// process in the request path share a trace id). -flight-admin lists
// admin endpoints whose flight recorders should be dumped
// (/debug/flight/trigger?reason=bit-mismatch) when the run detects a
// bit mismatch, preserving the serving-side context of the bad frame.
//
//	rlibmload -addr 127.0.0.1:7043 -duration 5s -conns 8 -batch 256
//	rlibmload -addr 127.0.0.1:7043 -pipeline 16      # 16 in flight per conn
//	rlibmload -addr 127.0.0.1:7043,127.0.0.1:7045    # two endpoints
//	rlibmload -addr 127.0.0.1:7043 -batch 1          # scalar RPC mode
//	rlibmload -addr 127.0.0.1:7043 -ping             # readiness probe (all endpoints)
//	rlibmload -addr 127.0.0.1:7050 -trace-frac 0.01 -trace-out trace.json
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlibm32/bfloat16"
	"rlibm32/float16"
	"rlibm32/internal/libm"
	"rlibm32/internal/perf"
	"rlibm32/internal/server"
	"rlibm32/internal/telemetry"
	"rlibm32/posit16"
	"rlibm32/posit32/positmath"

	rlibm "rlibm32"
)

// workload is one function's precomputed input and expected-output bit
// arrays.
type workload struct {
	name     string
	in       []uint32
	expected []uint32
}

// buildWorkloads precomputes inputs (via the shared internal/perf
// generators for the 32-bit types; the full 2^16 input space for the
// 16-bit types) and expected outputs from direct in-process calls.
func buildWorkloads(variant string, funcs []string, n int) ([]workload, error) {
	var out []workload
	for _, name := range funcs {
		w := workload{name: name}
		switch variant {
		case libm.VariantFloat32:
			f, ok := rlibm.Func(name)
			if !ok {
				return nil, fmt.Errorf("unknown float32 function %q", name)
			}
			xs := perf.Float32Inputs(name, n)
			w.in = make([]uint32, n)
			w.expected = make([]uint32, n)
			for i, x := range xs {
				w.in[i] = math.Float32bits(x)
				w.expected[i] = math.Float32bits(f(x))
			}
		case libm.VariantPosit32:
			f, ok := positmath.Func(name)
			if !ok {
				return nil, fmt.Errorf("unknown posit32 function %q", name)
			}
			ps := perf.PositInputs(name, n)
			w.in = make([]uint32, n)
			w.expected = make([]uint32, n)
			for i, p := range ps {
				w.in[i] = uint32(p)
				w.expected[i] = uint32(f(p))
			}
		case libm.VariantBfloat16:
			f, ok := bfloat16.Func(name)
			if !ok {
				return nil, fmt.Errorf("unknown bfloat16 function %q", name)
			}
			w.in, w.expected = all16(func(b uint16) uint16 { return f(bfloat16.FromBits(b)).Bits() })
		case libm.VariantFloat16:
			f, ok := float16.Func(name)
			if !ok {
				return nil, fmt.Errorf("unknown float16 function %q", name)
			}
			w.in, w.expected = all16(func(b uint16) uint16 { return f(float16.FromBits(b)).Bits() })
		case libm.VariantPosit16:
			f, ok := posit16.Func(name)
			if !ok {
				return nil, fmt.Errorf("unknown posit16 function %q", name)
			}
			w.in, w.expected = all16(func(b uint16) uint16 { return f(posit16.FromBits(b)).Bits() })
		default:
			return nil, fmt.Errorf("unknown type %q (want one of %s)", variant, strings.Join(libm.Variants(), " "))
		}
		out = append(out, w)
	}
	return out, nil
}

// printWaterfall renders the per-stage latency waterfall from the
// collected spans: stages in pipeline order (client → proxy →
// backend), each with the spans seen, the mean offset of the stage's
// start from its trace's first span (where in the request lifetime the
// stage begins), and duration quantiles. Reading down the column is
// reading a request's journey through the fleet.
func printWaterfall(spans []telemetry.StitchedSpan, traced uint64) {
	t0 := make(map[uint64]int64, traced)
	for _, s := range spans {
		if cur, ok := t0[s.TraceID]; !ok || s.Span.Start < cur {
			t0[s.TraceID] = s.Span.Start
		}
	}
	type stageKey struct{ proc, stage uint8 }
	type stageAgg struct {
		durs      []int64
		offsetSum int64
	}
	agg := make(map[stageKey]*stageAgg)
	for _, s := range spans {
		k := stageKey{s.Span.Proc, s.Span.Stage}
		a := agg[k]
		if a == nil {
			a = &stageAgg{}
			agg[k] = a
		}
		a.durs = append(a.durs, s.Span.Dur)
		a.offsetSum += s.Span.Start - t0[s.TraceID]
	}
	keys := make([]stageKey, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proc != keys[j].proc {
			return keys[i].proc < keys[j].proc
		}
		return keys[i].stage < keys[j].stage
	})
	fmt.Printf("  trace waterfall (%d traced requests, %d spans):\n", traced, len(spans))
	for _, k := range keys {
		a := agg[k]
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		var sum int64
		for _, d := range a.durs {
			sum += d
		}
		n := len(a.durs)
		q := func(p float64) time.Duration {
			i := int(p * float64(n))
			if i >= n {
				i = n - 1
			}
			return time.Duration(a.durs[i])
		}
		fmt.Printf("    %-16s n=%-7d start=+%-12v mean=%-12v p50=%-12v p99=%v\n",
			telemetry.SpanName(k.proc, k.stage), n,
			time.Duration(a.offsetSum/int64(n)).Round(time.Microsecond),
			time.Duration(sum/int64(n)).Round(time.Microsecond),
			q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond))
	}
}

// all16 enumerates the full 16-bit input space with expected outputs.
func all16(f func(uint16) uint16) (in, expected []uint32) {
	in = make([]uint32, 1<<16)
	expected = make([]uint32, 1<<16)
	for b := 0; b < 1<<16; b++ {
		in[b] = uint32(b)
		expected[b] = uint32(f(uint16(b)))
	}
	return in, expected
}

// funcStats attributes one function's mismatches on one endpoint,
// keeping the first offending bit pattern for the failure report.
type funcStats struct {
	mismatches                   uint64
	firstIn, firstGot, firstWant uint32
}

// connStats accumulates one connection's counters.
type connStats struct {
	endpoint   string
	requests   uint64
	values     uint64
	busy       uint64
	errFrames  uint64 // non-OK, non-BUSY responses
	transport  uint64
	mismatches uint64
	traced     uint64                // requests that came back with stitchable spans
	byFunc     map[string]*funcStats // mismatch attribution per function
	latencies  []time.Duration
	spans      []telemetry.StitchedSpan
}

// maxTraceSpans bounds the spans one connection retains, so a long
// traced run cannot grow without bound (the waterfall and the trace
// file are both statistical views; the earliest spans are as good as
// any).
const maxTraceSpans = 50000

// Trace ids are unique across the process: a per-run base (so two runs
// do not collide in a shared trace viewer) plus a global sequence.
var (
	traceBase = uint64(time.Now().UnixNano()) << 8
	traceSeq  atomic.Uint64
)

func nextTraceID() uint64 {
	id := traceBase + traceSeq.Add(1)
	if id == 0 {
		id = 1
	}
	return id
}

// noteTrace collects one traced call's stitchable spans: a synthesized
// client.rpc span (issue to completion) and client.flush span (issue
// to the flush that put the frame on the wire), plus every span the
// response relayed from the proxy and backend. A call whose peer never
// negotiated v2 has IssuedNs == 0 and contributes nothing.
func (st *connStats) noteTrace(traceID uint64, call *server.Call, endNs int64) {
	if call.IssuedNs == 0 || len(st.spans) >= maxTraceSpans {
		return
	}
	st.traced++
	st.spans = append(st.spans, telemetry.StitchedSpan{TraceID: traceID, Span: telemetry.SpanRecord{
		Start: call.IssuedNs, Dur: endNs - call.IssuedNs,
		Proc: telemetry.ProcClient, Stage: telemetry.StageRPC,
	}})
	if call.SentNs >= call.IssuedNs {
		st.spans = append(st.spans, telemetry.StitchedSpan{TraceID: traceID, Span: telemetry.SpanRecord{
			Start: call.IssuedNs, Dur: call.SentNs - call.IssuedNs,
			Proc: telemetry.ProcClient, Stage: telemetry.StageFlush,
		}})
	}
	for _, sp := range call.Spans {
		st.spans = append(st.spans, telemetry.StitchedSpan{TraceID: traceID, Span: sp})
	}
}

// noteMismatch records one bit mismatch against its function.
func (st *connStats) noteMismatch(name string, in, got, want uint32) {
	st.mismatches++
	if st.byFunc == nil {
		st.byFunc = make(map[string]*funcStats)
	}
	fs := st.byFunc[name]
	if fs == nil {
		fs = &funcStats{firstIn: in, firstGot: got, firstWant: want}
		st.byFunc[name] = fs
	}
	fs.mismatches++
}

// runSync drives one connection with a single request in flight —
// classic blocking RPC, measuring unpipelined round trips. Every
// traceEvery-th request (0 = never) goes out with a trace context.
func runSync(c *server.Client, st *connStats, work []workload, code uint8, batch, ci int, stop time.Time, verify bool, traceEvery int) {
	off := ci * 131 // de-phase connections across the input arrays
	done := make(chan *server.Call, 1)
	for i := 0; time.Now().Before(stop); i++ {
		w := &work[(ci+i)%len(work)]
		lo := (off + i*batch) % len(w.in)
		hi := lo + batch
		if hi > len(w.in) {
			hi = len(w.in)
		}
		in := w.in[lo:hi]
		var got []uint32
		var status uint8
		var err error
		var lat time.Duration
		if traceEvery > 0 && i%traceEvery == 0 {
			traceID := nextTraceID()
			start := time.Now()
			call := <-c.GoTraced(code, w.name, nil, in, done, 0, traceID, 0).Done
			lat = time.Since(start)
			got, status, err = call.Dst, call.Status, call.Err
			if err == nil {
				st.noteTrace(traceID, call, time.Now().UnixNano())
			}
		} else {
			start := time.Now()
			got, status, err = c.EvalBits(code, w.name, nil, in)
			lat = time.Since(start)
		}
		if err != nil {
			st.transport++
			return
		}
		switch status {
		case server.StatusOK:
			st.requests++
			st.values += uint64(len(in))
			st.latencies = append(st.latencies, lat)
			if verify {
				for j := range in {
					if got[j] != w.expected[lo+j] {
						st.noteMismatch(w.name, in[j], got[j], w.expected[lo+j])
					}
				}
			}
		case server.StatusBusy:
			st.busy++
			time.Sleep(200 * time.Microsecond)
		default:
			st.errFrames++
		}
	}
}

// runPipelined drives one connection with depth requests in flight
// through the client's async Go API: a completion immediately reissues
// its slot, so the pipe stays full until the deadline and then drains.
// Each slot owns a reusable dst buffer (the client writes results in
// place), so the steady-state loop allocates nothing per request.
func runPipelined(c *server.Client, st *connStats, work []workload, code uint8, batch, depth, ci int, stop time.Time, verify bool, traceEvery int) {
	type slot struct {
		w       *workload
		lo      int
		start   time.Time
		traceID uint64
		dst     []uint32
	}
	done := make(chan *server.Call, depth)
	slots := make([]slot, depth)
	off := ci * 131
	seq := 0
	issue := func(si int) {
		i := seq
		seq++
		w := &work[(ci+i)%len(work)]
		lo := (off + i*batch) % len(w.in)
		hi := lo + batch
		if hi > len(w.in) {
			hi = len(w.in)
		}
		sl := &slots[si]
		sl.w, sl.lo, sl.start = w, lo, time.Now()
		if cap(sl.dst) < hi-lo {
			sl.dst = make([]uint32, hi-lo)
		}
		sl.traceID = 0
		if traceEvery > 0 && i%traceEvery == 0 {
			sl.traceID = nextTraceID()
			c.GoTraced(code, w.name, sl.dst[:hi-lo], w.in[lo:hi], done, uint64(si), sl.traceID, 0)
		} else {
			c.GoTagged(code, w.name, sl.dst[:hi-lo], w.in[lo:hi], done, uint64(si))
		}
	}
	inflight := 0
	for si := 0; si < depth; si++ {
		issue(si)
		inflight++
	}
	for inflight > 0 {
		call := <-done
		inflight--
		si := int(call.Tag)
		sl := &slots[si]
		lat := time.Since(sl.start)
		if call.Err != nil {
			st.transport++
			return
		}
		if sl.traceID != 0 {
			st.noteTrace(sl.traceID, call, time.Now().UnixNano())
		}
		switch call.Status {
		case server.StatusOK:
			st.requests++
			st.values += uint64(len(call.Dst))
			st.latencies = append(st.latencies, lat)
			if verify {
				for j := range call.Dst {
					if call.Dst[j] != sl.w.expected[sl.lo+j] {
						st.noteMismatch(sl.w.name, sl.w.in[sl.lo+j], call.Dst[j], sl.w.expected[sl.lo+j])
					}
				}
			}
		case server.StatusBusy:
			st.busy++
		default:
			st.errFrames++
		}
		if time.Now().Before(stop) {
			issue(si)
			inflight++
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7043", "server address(es), comma-separated; connections round-robin")
	ping := flag.Bool("ping", false, "ping every endpoint and exit (readiness probe)")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	conns := flag.Int("conns", 8, "concurrent connections")
	batch := flag.Int("batch", 256, "values per request (1 = scalar RPC mode)")
	pipeline := flag.Int("pipeline", 0, "requests in flight per connection (0 = synchronous)")
	typ := flag.String("type", "float32", "representation: "+strings.Join(libm.Variants(), " "))
	funcsFlag := flag.String("funcs", "all", "comma-separated function names, or all")
	n := flag.Int("n", 1<<16, "precomputed inputs per function (32-bit types)")
	verify := flag.Bool("verify", true, "check every result bit against the in-process library")
	minRate := flag.Float64("min-rate", 0, "fail unless throughput reaches this many values/s")
	maxBusyFrac := flag.Float64("max-busy-frac", -1, "fail if more than this fraction of requests is shed with BUSY (-1 disables)")
	quiet := flag.Bool("quiet", false, "only print the summary line")
	traceFrac := flag.Float64("trace-frac", 0, "fraction of requests to trace end-to-end (0 disables)")
	traceOut := flag.String("trace-out", "", "write collected spans as stitched Chrome-trace JSON to this file")
	flightAdmin := flag.String("flight-admin", "", "comma-separated admin addresses to flight-dump on bit mismatch")
	flag.Parse()

	traceEvery := 0
	if *traceFrac > 0 {
		traceEvery = int(1 / *traceFrac)
		if traceEvery < 1 {
			traceEvery = 1
		}
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "rlibmload: -addr is empty")
		os.Exit(2)
	}

	if *ping {
		failed := false
		for _, a := range addrs {
			c, err := server.Dial(a)
			if err == nil {
				err = c.Ping()
				c.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlibmload: ping %s: %v\n", a, err)
				failed = true
				continue
			}
			fmt.Printf("rlibmload: %s is up\n", a)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	code, ok := server.TypeCode(*typ)
	if !ok {
		fmt.Fprintf(os.Stderr, "rlibmload: unknown -type %q\n", *typ)
		os.Exit(2)
	}
	funcs := libm.Names(*typ)
	if *funcsFlag != "all" {
		funcs = strings.Split(*funcsFlag, ",")
	}
	if !*quiet {
		fmt.Printf("rlibmload: precomputing %s expected outputs for %s\n", *typ, strings.Join(funcs, " "))
	}
	work, err := buildWorkloads(*typ, funcs, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlibmload:", err)
		os.Exit(2)
	}

	stats := make([]connStats, *conns)
	var wg sync.WaitGroup
	stop := time.Now().Add(*duration)
	for ci := 0; ci < *conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			st := &stats[ci]
			st.endpoint = addrs[ci%len(addrs)]
			c, err := server.Dial(st.endpoint)
			if err != nil {
				st.transport++
				return
			}
			defer c.Close()
			if traceEvery > 0 {
				// One ping before load: its response carries the peer's
				// protocol-version advertisement, so the very first
				// traced request can already go out at v2 instead of
				// silently degrading until some response negotiates.
				if err := c.Ping(); err != nil {
					st.transport++
					return
				}
			}
			if *pipeline > 0 {
				runPipelined(c, st, work, code, *batch, *pipeline, ci, stop, *verify, traceEvery)
			} else {
				runSync(c, st, work, code, *batch, ci, stop, *verify, traceEvery)
			}
		}(ci)
	}
	startAll := time.Now()
	wg.Wait()
	elapsed := time.Since(startAll)
	if elapsed > *duration {
		elapsed = *duration // workers stop on the shared deadline
	}

	var total connStats
	var lats []time.Duration
	var allSpans []telemetry.StitchedSpan
	perEndpoint := make(map[string]*connStats)
	badFuncs := make(map[string]map[string]*funcStats) // endpoint -> func -> attribution
	for i := range stats {
		st := &stats[i]
		total.requests += st.requests
		total.values += st.values
		total.busy += st.busy
		total.errFrames += st.errFrames
		total.transport += st.transport
		total.mismatches += st.mismatches
		total.traced += st.traced
		allSpans = append(allSpans, st.spans...)
		lats = append(lats, st.latencies...)
		ep := perEndpoint[st.endpoint]
		if ep == nil {
			ep = &connStats{endpoint: st.endpoint}
			perEndpoint[st.endpoint] = ep
		}
		ep.requests += st.requests
		ep.values += st.values
		ep.busy += st.busy
		ep.errFrames += st.errFrames
		ep.transport += st.transport
		ep.mismatches += st.mismatches
		for name, fs := range st.byFunc {
			m := badFuncs[st.endpoint]
			if m == nil {
				m = make(map[string]*funcStats)
				badFuncs[st.endpoint] = m
			}
			agg := m[name]
			if agg == nil {
				agg = &funcStats{firstIn: fs.firstIn, firstGot: fs.firstGot, firstWant: fs.firstWant}
				m[name] = agg
			}
			agg.mismatches += fs.mismatches
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}

	mode := "sync"
	if *pipeline > 0 {
		mode = fmt.Sprintf("pipeline=%d", *pipeline)
	}
	rate := float64(total.values) / elapsed.Seconds()
	fmt.Printf("rlibmload: type=%s conns=%d batch=%d %s duration=%v\n", *typ, *conns, *batch, mode, elapsed.Round(time.Millisecond))
	fmt.Printf("  requests=%d values=%d throughput=%.0f values/s (%.0f req/s)\n",
		total.requests, total.values, rate, float64(total.requests)/elapsed.Seconds())
	fmt.Printf("  latency p50=%v p99=%v busy=%d err_frames=%d transport_errs=%d mismatches=%d\n",
		q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		total.busy, total.errFrames, total.transport, total.mismatches)
	if len(addrs) > 1 {
		eps := make([]string, 0, len(perEndpoint))
		for a := range perEndpoint {
			eps = append(eps, a)
		}
		sort.Strings(eps)
		for _, a := range eps {
			ep := perEndpoint[a]
			fmt.Printf("  endpoint %s: requests=%d values=%d (%.0f values/s) busy=%d err_frames=%d transport_errs=%d mismatches=%d\n",
				a, ep.requests, ep.values, float64(ep.values)/elapsed.Seconds(),
				ep.busy, ep.errFrames, ep.transport, ep.mismatches)
		}
	}
	if total.traced > 0 {
		printWaterfall(allSpans, total.traced)
	}
	if *traceOut != "" && len(allSpans) > 0 {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = telemetry.WriteStitchedTrace(f, allSpans)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlibmload: writing %s: %v\n", *traceOut, err)
		} else {
			fmt.Printf("  stitched trace: %d spans -> %s\n", len(allSpans), *traceOut)
		}
	}
	if total.mismatches > 0 && *flightAdmin != "" {
		// A bit mismatch is exactly the anomaly the serving-side flight
		// recorders exist for: ask each admin endpoint to dump its ring
		// before anyone restarts a process and loses the context.
		for _, a := range strings.Split(*flightAdmin, ",") {
			if a = strings.TrimSpace(a); a == "" {
				continue
			}
			resp, err := http.Get("http://" + a + "/debug/flight/trigger?reason=bit-mismatch")
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlibmload: flight trigger %s: %v\n", a, err)
				continue
			}
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "rlibmload: flight dump triggered on %s\n", a)
		}
	}
	if total.mismatches > 0 {
		eps := make([]string, 0, len(badFuncs))
		for a := range badFuncs {
			eps = append(eps, a)
		}
		sort.Strings(eps)
		for _, a := range eps {
			names := make([]string, 0, len(badFuncs[a]))
			for name := range badFuncs[a] {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fs := badFuncs[a][name]
				fmt.Fprintf(os.Stderr,
					"rlibmload: MISMATCH endpoint=%s type=%s func=%s count=%d first: in=%#08x got=%#08x want=%#08x\n",
					a, *typ, name, fs.mismatches, fs.firstIn, fs.firstGot, fs.firstWant)
			}
		}
	}
	if total.mismatches > 0 || total.errFrames > 0 || total.transport > 0 {
		fmt.Fprintln(os.Stderr, "rlibmload: FAILED (mismatch or error frames)")
		os.Exit(1)
	}
	if total.requests == 0 {
		fmt.Fprintln(os.Stderr, "rlibmload: FAILED (no successful requests)")
		os.Exit(1)
	}
	if *minRate > 0 && rate < *minRate {
		fmt.Fprintf(os.Stderr, "rlibmload: FAILED (throughput %.0f values/s below floor %.0f)\n", rate, *minRate)
		os.Exit(1)
	}
	if *maxBusyFrac >= 0 {
		frac := 0.0
		if total.requests+total.busy > 0 {
			frac = float64(total.busy) / float64(total.requests+total.busy)
		}
		if frac > *maxBusyFrac {
			fmt.Fprintf(os.Stderr, "rlibmload: FAILED (busy fraction %.4f above bound %.4f)\n", frac, *maxBusyFrac)
			os.Exit(1)
		}
	}
}
