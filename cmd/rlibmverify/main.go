// Command rlibmverify runs the exhaustive float32 verification sweep:
// every one of the 2^32 input bit patterns (or a -limit bounded prefix)
// is checked against the correctly rounded result, using the two-tier
// filter-then-oracle scheme of internal/exhaust.
//
// Usage:
//
//	rlibmverify -func log2                     # full 2^32 sweep of rlibm log2
//	rlibmverify -func all -limit 1<<24         # bounded CI slice, all functions
//	rlibmverify -func exp -lib fastfloat       # refute a baseline library
//	rlibmverify -func ln -checkpoint ln.ckpt   # checkpointed ...
//	rlibmverify -func ln -checkpoint ln.ckpt -resume   # ... and resumed
//
// The exit status is 0 iff every completed sweep found zero mismatches.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rlibm32/internal/exhaust"
	"rlibm32/internal/oracle"
	"rlibm32/internal/telemetry"

	rlibm "rlibm32"
)

func main() {
	var (
		funcName  = flag.String("func", "", "function to verify (ln, log2, ..., or 'all')")
		lib       = flag.String("lib", "rlibm", "library under test (rlibm, fastfloat, stddouble, crdouble, vecfloat)")
		workers   = flag.Int("workers", 0, "sweep parallelism (default GOMAXPROCS)")
		shardBits = flag.Int("shard-bits", 20, "log2 of inputs per shard")
		limitStr  = flag.String("limit", "0", "bound the sweep to the first N inputs (accepts 1<<24 syntax; 0 = full 2^32)")
		ckpt      = flag.String("checkpoint", "", "checkpoint file path (enables resumable sweeps)")
		resume    = flag.Bool("resume", false, "resume from -checkpoint if it exists")
		guard     = flag.Float64("guard", 0, "filter guard band half-width in float64 ulps (default 256)")
		quiet     = flag.Bool("q", false, "suppress progress lines")
		maxShow   = flag.Int("show", 10, "mismatches to print per function")
		dump      = flag.String("dump", "", "append refuted input bit patterns to this file (rlibmgen -extra format)")
		metrics   = flag.String("metrics", "", "serve Prometheus sweep-progress metrics on this address (e.g. :9100) for the duration of the run")
	)
	flag.Parse()
	if *funcName == "" {
		fmt.Fprintln(os.Stderr, "rlibmverify: -func is required (one of", strings.Join(rlibm.Names(), " "), "or 'all')")
		os.Exit(2)
	}
	limit, err := parseLimit(*limitStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlibmverify: bad -limit %q: %v\n", *limitStr, err)
		os.Exit(2)
	}

	names := []string{*funcName}
	if *funcName == "all" {
		names = rlibm.Names()
	}

	// SIGINT/SIGTERM cancel the sweep; the engine flushes a checkpoint
	// of the completed shards before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A multi-hour full sweep is worth watching remotely: -metrics
	// serves /metrics with per-shard progress and the oracle cache and
	// Ziv-ladder counters the escalation path exercises.
	var reg *telemetry.Registry
	if *metrics != "" {
		reg = telemetry.NewRegistry()
		oracle.EnableTelemetry(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintf(os.Stderr, "rlibmverify: -metrics: %v\n", err)
			}
		}()
	}

	failed := false
	interrupted := false
	for _, name := range names {
		cfg := exhaust.Config{
			Func: name, Lib: *lib,
			Workers: *workers, ShardBits: *shardBits,
			Limit: limit, GuardUlps: *guard,
			CheckpointPath: ckptPath(*ckpt, name, len(names) > 1),
			Resume:         *resume,
			Metrics:        reg,
		}
		if !*quiet {
			cfg.Progress = func(s exhaust.Snapshot) {
				rate := float64(s.RunInputs) / s.Elapsed.Seconds()
				fmt.Printf("%-6s %6.2f%%  shards %d/%d  inputs %d  %.1fM/s  escalated %d  mismatched %d\n",
					name, 100*float64(s.ShardsDone)/float64(s.ShardsTotal),
					s.ShardsDone, s.ShardsTotal, s.Inputs, rate/1e6, s.Escalated, s.Mismatched)
			}
		}
		rep, err := exhaust.Run(ctx, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rlibmverify: %s: %v\n", name, err)
			os.Exit(2)
		}
		printReport(rep, *maxShow)
		if rep.Mismatched > 0 {
			failed = true
			if *dump != "" {
				if err := dumpMismatches(*dump, name, rep); err != nil {
					fmt.Fprintf(os.Stderr, "rlibmverify: -dump: %v\n", err)
					os.Exit(2)
				}
			}
		}
		if !rep.Complete {
			interrupted = true
			break
		}
	}
	switch {
	case failed:
		os.Exit(1)
	case interrupted:
		fmt.Println("interrupted — rerun with -resume to continue")
		os.Exit(130)
	}
}

// dumpMismatches appends the refuted input bit patterns to path in the
// one-pattern-per-line format rlibmgen -extra reads back, closing the
// counterexample-guided loop between verification and generation.
func dumpMismatches(path, name string, rep *exhaust.Report) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s/%s: %d refuted inputs\n", rep.Lib, name, rep.Mismatched)
	for _, m := range rep.Mismatches {
		fmt.Fprintf(&sb, "%#08x\n", m.Bits)
	}
	_, err = f.WriteString(sb.String())
	return err
}

// ckptPath derives a per-function checkpoint path when sweeping several
// functions against one -checkpoint flag.
func ckptPath(base, name string, multi bool) string {
	if base == "" || !multi {
		return base
	}
	return base + "." + name
}

// parseLimit accepts a plain integer or the 1<<N shift syntax the CI
// workflow and docs use.
func parseLimit(s string) (uint64, error) {
	if base, shift, ok := strings.Cut(s, "<<"); ok {
		b, err := strconv.ParseUint(strings.TrimSpace(base), 0, 64)
		if err != nil {
			return 0, err
		}
		k, err := strconv.ParseUint(strings.TrimSpace(shift), 0, 6)
		if err != nil {
			return 0, err
		}
		return b << k, nil
	}
	return strconv.ParseUint(strings.TrimSpace(s), 0, 64)
}

func printReport(r *exhaust.Report, maxShow int) {
	status := "PROVED correctly rounded"
	if r.Mismatched > 0 {
		status = fmt.Sprintf("REFUTED: %d wrong results", r.Mismatched)
	}
	scope := fmt.Sprintf("%d inputs", r.Inputs)
	if r.Complete && r.Inputs == 1<<32 {
		scope = "full 2^32 sweep"
	}
	if !r.Complete {
		status = fmt.Sprintf("INCOMPLETE (%d/%d shards): %d wrong so far", r.ShardsDone, r.ShardsTotal, r.Mismatched)
	}
	fmt.Printf("%-6s %-10s %s — %s in %s\n", r.Func, r.Lib, status, scope, r.Elapsed.Round(time.Millisecond))
	fmt.Printf("       inputs %d (NaN %d)  filter-decided %d (%.4f%%)  oracle-escalated %d (%.6f%%)\n",
		r.Inputs, r.NaNInputs, r.Filtered, 100*(1-r.EscalationFraction()), r.Escalated, 100*r.EscalationFraction())
	for i, m := range r.Mismatches {
		if i >= maxShow {
			fmt.Printf("       ... %d more\n", int(r.Mismatched)-maxShow)
			break
		}
		fmt.Printf("       x=%#08x  got=%#08x  want=%#08x\n", m.Bits, m.Got, m.Want)
	}
}
