package bfloat16_test

import (
	"math"
	"testing"

	"rlibm32/bfloat16"
	"rlibm32/internal/checks"
)

// TestExhaustivelyCorrect is the 16-bit payoff: every one of the 65536
// inputs of every function is verified against the oracle — the same
// all-inputs guarantee the paper's server-scale runs establish for
// 32-bit types.
func TestExhaustivelyCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle-heavy (≈1s per function)")
	}
	for _, name := range bfloat16.Names() {
		res := checks.CheckMini("bfloat16", "rlibm", name)
		if res.Tested <= 0 {
			t.Fatalf("%s: no implementation", name)
		}
		if !res.Correct() {
			t.Errorf("%s: %d/%d wrong results (e.g. x=%v)", name, res.Wrong, res.Tested, res.Example)
		}
	}
}

func TestConversions(t *testing.T) {
	cases := []struct {
		v    float64
		bits uint16
	}{
		{1, 0x3F80},
		{-2, 0xC000},
		{0.5, 0x3F00},
		{0, 0x0000},
	}
	for _, c := range cases {
		if got := bfloat16.FromFloat64(c.v); got.Bits() != c.bits {
			t.Errorf("FromFloat64(%v) = %#x, want %#x", c.v, got.Bits(), c.bits)
		}
	}
	// bfloat16 is truncated float32: the upper 16 bits round-trip.
	for b := uint32(0); b < 1<<16; b += 97 {
		x := math.Float32frombits(b << 16)
		if x != x {
			continue
		}
		if bfloat16.FromBits(uint16(b)).Float32() != x {
			t.Fatalf("embedding mismatch at %#x", b)
		}
	}
}

func TestSpecials(t *testing.T) {
	if !bfloat16.FromFloat64(math.NaN()).IsNaN() {
		t.Error("NaN conversion")
	}
	if !bfloat16.Inf(1).IsInf() || bfloat16.Inf(1).Float64() != math.Inf(1) {
		t.Error("Inf")
	}
	if v := bfloat16.Exp(bfloat16.FromFloat64(0)); v.Float64() != 1 {
		t.Errorf("Exp(0) = %v", v.Float64())
	}
	if v := bfloat16.Log(bfloat16.FromFloat64(0)); v.Float64() != math.Inf(-1) {
		t.Errorf("Log(0) = %v", v.Float64())
	}
	if v := bfloat16.Log(bfloat16.FromFloat64(-1)); !v.IsNaN() {
		t.Errorf("Log(-1) = %v", v.Float64())
	}
	if v := bfloat16.Sinpi(bfloat16.FromFloat64(3)); v.Float64() != 0 {
		t.Errorf("Sinpi(3) = %v", v.Float64())
	}
	for _, name := range bfloat16.Names() {
		f, ok := bfloat16.Func(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !f(bfloat16.NaN()).IsNaN() {
			t.Errorf("%s(NaN) not NaN", name)
		}
	}
}

func TestMonotoneExp(t *testing.T) {
	prev := bfloat16.Exp(bfloat16.FromFloat64(-20))
	b := bfloat16.FromFloat64(-20)
	for i := 0; i < 20000; i++ {
		b = b.NextUp()
		if b.IsInf() {
			break
		}
		v := bfloat16.Exp(b)
		if v.Float64() < prev.Float64() {
			t.Fatalf("Exp not monotone at %v", b.Float64())
		}
		prev = v
	}
}
