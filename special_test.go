package rlibm32_test

import (
	"math"
	"testing"

	rlibm "rlibm32"
	"rlibm32/internal/fp"
)

// anyNaN marks table entries whose expected result is a NaN of any
// payload (the library guarantees NaN-ness, not a payload).
const anyNaN = 0x7FC00000

const (
	posZero  = 0x00000000
	negZero  = 0x80000000
	posInf   = 0x7F800000
	negInf   = 0xFF800000
	one      = 0x3F800000
	negOne   = 0xBF800000
	minSub   = 0x00000001 // 2^-149, smallest positive denormal
	maxSub   = 0x007FFFFF // largest denormal
	minNorm  = 0x00800000 // 2^-126, smallest normal
	maxFin   = 0x7F7FFFFF // MaxFloat32
	nanQuiet = 0x7FC00000
	nanPay   = 0x7FABCDEF // NaN with a non-default payload
	nanNeg   = 0xFFC00001 // negative-sign NaN
)

// specialTable pins the IEEE-754 special-value behaviour of all ten
// functions as exact output bit patterns: NaN propagation, ±Inf,
// signed zeros, denormal edges, domain edges (log of zero and of
// negatives), and overflow/underflow saturation. Each case is checked
// on the scalar entry point and, via TestSpecialValuesSliceParity, on
// the batch kernels.
var specialTable = []struct {
	fn   string
	in   uint32
	want uint32 // exact result bits; anyNaN accepts any NaN payload
}{
	// ln: log(±0) = -Inf, log(x<0) = NaN, log(1) = +0, log(+Inf) = +Inf.
	{"ln", posZero, negInf},
	{"ln", negZero, negInf},
	{"ln", one, posZero},
	{"ln", negOne, anyNaN},
	{"ln", posInf, posInf},
	{"ln", negInf, anyNaN},
	{"ln", 0x80000001, anyNaN}, // smallest negative denormal
	{"ln", nanPay, anyNaN},

	// log2: exact on powers of two down to the denormal floor.
	{"log2", posZero, negInf},
	{"log2", negZero, negInf},
	{"log2", minSub, 0xC3150000},     // log2(2^-149) = -149
	{"log2", minNorm, 0xC2FC0000},    // log2(2^-126) = -126
	{"log2", 0x41000000, 0x40400000}, // log2(8) = 3
	{"log2", negOne, anyNaN},
	{"log2", posInf, posInf},
	{"log2", nanNeg, anyNaN},

	// log10: same edge structure.
	{"log10", posZero, negInf},
	{"log10", negZero, negInf},
	{"log10", 0x447A0000, 0x40400000}, // log10(1000) = 3
	{"log10", negOne, anyNaN},
	{"log10", posInf, posInf},
	{"log10", nanQuiet, anyNaN},

	// exp: exp(±0) = 1 exactly, saturates to +Inf/+0 outside
	// [-103.97, 88.73], exp(-Inf) = +0.
	{"exp", posZero, one},
	{"exp", negZero, one},
	{"exp", posInf, posInf},
	{"exp", negInf, posZero},
	{"exp", 0x42B80000, posInf},  // exp(92) overflows
	{"exp", 0xC2D20000, posZero}, // exp(-105) underflows to +0
	{"exp", nanPay, anyNaN},

	// exp2: exact powers of two; thresholds at 128 and -150.
	{"exp2", posZero, one},
	{"exp2", negZero, one},
	{"exp2", 0x41200000, 0x44800000}, // exp2(10) = 1024
	{"exp2", 0xC3160000, posZero},    // exp2(-150) = 2^-150, a tie: even-rounds to +0
	{"exp2", 0x43000000, posInf},     // exp2(128) overflows
	{"exp2", 0xC31C0000, posZero},    // exp2(-156) underflows
	{"exp2", negInf, posZero},
	{"exp2", posInf, posInf},
	{"exp2", nanNeg, anyNaN},

	// exp10: decade exactness and saturation.
	{"exp10", posZero, one},
	{"exp10", negZero, one},
	{"exp10", 0x40000000, 0x42C80000}, // exp10(2) = 100
	{"exp10", 0x42200000, posInf},     // exp10(40) overflows
	{"exp10", 0xC2400000, posZero},    // exp10(-48) underflows
	{"exp10", negInf, posZero},
	{"exp10", posInf, posInf},
	{"exp10", nanQuiet, anyNaN},

	// sinh: odd, sign-of-zero preserving, saturating.
	{"sinh", posZero, posZero},
	{"sinh", negZero, negZero},
	{"sinh", posInf, posInf},
	{"sinh", negInf, negInf},
	{"sinh", 0x42B80000, posInf}, // sinh(92) overflows
	{"sinh", 0xC2B80000, negInf},
	{"sinh", nanPay, anyNaN},

	// cosh: even, cosh(±0) = 1, saturates to +Inf both sides.
	{"cosh", posZero, one},
	{"cosh", negZero, one},
	{"cosh", posInf, posInf},
	{"cosh", negInf, posInf},
	{"cosh", 0xC2B80000, posInf},
	{"cosh", nanNeg, anyNaN},

	// sinpi: IEEE sinPi zero conventions — sinPi(±0) = ±0, sinPi(+n)
	// is +0 for even and -0 for odd positive integers (mirrored by
	// oddness), NaN at ±Inf.
	{"sinpi", posZero, posZero},
	{"sinpi", negZero, negZero},
	{"sinpi", one, negZero},        // sinpi(1) = -0
	{"sinpi", negOne, posZero},     // sinpi(-1) = +0
	{"sinpi", 0x4B800000, posZero}, // sinpi(2^24), even integer
	{"sinpi", 0x3F000000, one},     // sinpi(0.5) = 1
	{"sinpi", 0xBF000000, negOne},
	{"sinpi", posInf, anyNaN},
	{"sinpi", negInf, anyNaN},
	{"sinpi", nanPay, anyNaN},

	// cospi: even, cosPi(±0) = 1, exact ±1 at integers, NaN at ±Inf.
	{"cospi", posZero, one},
	{"cospi", negZero, one},
	{"cospi", one, negOne},
	{"cospi", negOne, negOne},
	{"cospi", 0x3F000000, posZero}, // cospi(0.5) = +0
	{"cospi", 0x4B000001, negOne},  // cospi(2^23+1), odd integer
	{"cospi", 0x4B800000, one},     // cospi(2^24), even integer
	{"cospi", posInf, anyNaN},
	{"cospi", negInf, anyNaN},
	{"cospi", nanNeg, anyNaN},
}

func checkSpecial(t *testing.T, fn string, in, got, want uint32, via string) {
	t.Helper()
	if want == anyNaN {
		g := math.Float32frombits(got)
		if g == g {
			t.Errorf("%s(%#08x) via %s = %#08x, want NaN", fn, in, via, got)
		}
		return
	}
	if got != want {
		t.Errorf("%s(%#08x) via %s = %#08x, want %#08x", fn, in, via, got, want)
	}
}

// TestSpecialValuesTable checks the scalar entry points against the
// exact-bits table.
func TestSpecialValuesTable(t *testing.T) {
	for _, c := range specialTable {
		f, ok := rlibm.Func(c.fn)
		if !ok {
			t.Fatalf("Func(%q) missing", c.fn)
		}
		got := math.Float32bits(f(math.Float32frombits(c.in)))
		checkSpecial(t, c.fn, c.in, got, c.want, "scalar")
	}
}

// TestSpecialValuesSliceParity re-runs the table through the batch
// kernels, each special embedded in a window of ordinary neighbours, so
// a vectorized special-case shortcut that diverges from the scalar path
// cannot hide.
func TestSpecialValuesSliceParity(t *testing.T) {
	for _, c := range specialTable {
		slice, ok := rlibm.FuncSlice(c.fn)
		if !ok {
			t.Fatalf("FuncSlice(%q) missing", c.fn)
		}
		x := math.Float32frombits(c.in)
		xs := []float32{0.5, 1.25, x, 2.75, -0.5}
		dst := make([]float32, len(xs))
		slice(dst, xs)
		checkSpecial(t, c.fn, c.in, math.Float32bits(dst[2]), c.want, "slice")

		// Single-element batch through the name-dispatch path.
		var one [1]float32
		if err := rlibm.EvalSlice(c.fn, one[:], []float32{x}); err != nil {
			t.Fatalf("EvalSlice(%q): %v", c.fn, err)
		}
		checkSpecial(t, c.fn, c.in, math.Float32bits(one[0]), c.want, "EvalSlice")
	}
}

// TestDenormalEdgeNeighbourhoods walks every function over the
// denormal/normal boundary and the extremes of the finite range,
// asserting scalar/slice bitwise parity (values themselves are covered
// by the oracle tests; parity is the contract here).
func TestDenormalEdgeNeighbourhoods(t *testing.T) {
	var edges []float32
	for _, b := range []uint32{minSub, maxSub, minNorm, maxFin} {
		for _, s := range []uint32{0, 0x80000000} {
			x := math.Float32frombits(b | s)
			edges = append(edges, fp.NextDown32(x), x, fp.NextUp32(x))
		}
	}
	for _, name := range rlibm.Names() {
		f, _ := rlibm.Func(name)
		slice, _ := rlibm.FuncSlice(name)
		dst := make([]float32, len(edges))
		slice(dst, edges)
		for i, x := range edges {
			want := f(x)
			if math.Float32bits(dst[i]) != math.Float32bits(want) {
				t.Errorf("%s(%#08x): slice %#08x != scalar %#08x", name,
					math.Float32bits(x), math.Float32bits(dst[i]), math.Float32bits(want))
			}
		}
	}
}

// FuzzEvalSliceAgreement fuzzes the batch-kernel contract: for any
// input bit pattern and any function, the slice kernels produce results
// bit-identical to the scalar entry point — including NaN payloads,
// signed zeros, and saturated infinities.
func FuzzEvalSliceAgreement(f *testing.F) {
	names := rlibm.Names()
	seeds := []uint32{
		posZero, negZero, minSub, maxSub, minNorm, maxFin,
		posInf, negInf, nanQuiet, nanPay, nanNeg,
		one, negOne, 0x42B17218, 0xC2CFF1B5, 0x4B800000,
		// Rounding-boundary inputs surfaced by the exhaustive sweep.
		0x0020b48e, 0x0041691c, 0x0082d238, 0x0085d5f3, 0x0102d238,
	}
	for _, b := range seeds {
		for i := range names {
			f.Add(b, uint8(i))
		}
	}
	f.Fuzz(func(t *testing.T, bits uint32, fi uint8) {
		name := names[int(fi)%len(names)]
		scalar, _ := rlibm.Func(name)
		x := math.Float32frombits(bits)
		want := scalar(x)

		// The fuzzed input rides in a window with its float neighbours so
		// batch-internal reordering or blending is exercised too.
		xs := []float32{fp.NextDown32(x), x, fp.NextUp32(x)}
		dst := make([]float32, len(xs))
		if err := rlibm.EvalSlice(name, dst, xs); err != nil {
			t.Fatal(err)
		}
		if math.Float32bits(dst[1]) != math.Float32bits(want) {
			t.Errorf("%s(%#08x): EvalSlice %#08x != scalar %#08x",
				name, bits, math.Float32bits(dst[1]), math.Float32bits(want))
		}
		for i, n := range xs {
			if w := scalar(n); math.Float32bits(dst[i]) != math.Float32bits(w) {
				t.Errorf("%s(%#08x): window[%d] slice %#08x != scalar %#08x",
					name, math.Float32bits(n), i, math.Float32bits(dst[i]), math.Float32bits(w))
			}
		}
	})
}
