// Benchmarks reproducing the paper's performance experiments with
// testing.B (one benchmark family per figure/table; the cmd/rlibmbench
// and cmd/rlibmsweep binaries print the paper-shaped summaries).
//
//	Figure 3  → BenchmarkFloat32/<func>/<library>
//	Figure 4  → BenchmarkPosit32/<func>/<library>
//	§4.3      → BenchmarkBatch1024/<func>/<library>
//	Table 1/2 → BenchmarkCheckOracle (oracle cost per correctness cell)
package rlibm32_test

import (
	"testing"

	rlibm "rlibm32"
	"rlibm32/internal/baselines"
	"rlibm32/internal/bigfp"
	"rlibm32/internal/oracle"
	"rlibm32/internal/perf"
	"rlibm32/internal/telemetry"
	"rlibm32/posit32"
	"rlibm32/posit32/positmath"
)

var sink float32

var sinkP posit32.Posit

func benchFloat32(b *testing.B, f func(float32) float32, name string) {
	xs := perf.Float32Inputs(name, 1<<12)
	b.ResetTimer()
	var s float32
	for i := 0; i < b.N; i++ {
		s += f(xs[i&(1<<12-1)])
	}
	sink = s
}

// BenchmarkFloat32 is the Figure 3 reproduction: rlibm vs each
// baseline, per function.
func BenchmarkFloat32(b *testing.B) {
	for _, name := range rlibm.Names() {
		rf, _ := rlibm.Func(name)
		b.Run(name+"/rlibm", func(b *testing.B) { benchFloat32(b, rf, name) })
		for _, lib := range baselines.Float32Libraries {
			bf := baselines.Func32(lib, name)
			if bf == nil {
				continue
			}
			b.Run(name+"/"+string(lib), func(b *testing.B) { benchFloat32(b, bf, name) })
		}
	}
}

func benchPosit(b *testing.B, f func(posit32.Posit) posit32.Posit, name string) {
	ps := perf.PositInputs(name, 1<<12)
	b.ResetTimer()
	var s posit32.Posit
	for i := 0; i < b.N; i++ {
		s ^= f(ps[i&(1<<12-1)])
	}
	sinkP = s
}

// BenchmarkPosit32 is the Figure 4 reproduction.
func BenchmarkPosit32(b *testing.B) {
	for _, name := range positmath.Names() {
		rf, _ := positmath.Func(name)
		b.Run(name+"/rlibm", func(b *testing.B) { benchPosit(b, rf, name) })
		for _, lib := range baselines.Posit32Libraries {
			bf := baselines.FuncPosit(lib, name)
			if bf == nil {
				continue
			}
			b.Run(name+"/"+string(lib), func(b *testing.B) { benchPosit(b, bf, name) })
		}
	}
}

// reportBatchMetrics converts a batch benchmark's raw ns/op into the
// two numbers the kernel work is judged by: ns per value and values
// per second.
func reportBatchMetrics(b *testing.B, width int) {
	perValue := float64(b.Elapsed().Nanoseconds()) / float64(b.N*width)
	b.ReportMetric(perValue, "ns/value")
	b.ReportMetric(1e9/perValue, "values/s")
}

// BenchmarkBatch1024 is the §4.3 "vectorization" harness: arrays of
// 1024 inputs processed per outer iteration.
func BenchmarkBatch1024(b *testing.B) {
	for _, name := range []string{"exp", "log2", "cospi"} {
		rf, _ := rlibm.Func(name)
		bf2, _ := rlibm.FuncSlice(name)
		xs := perf.Float32Inputs(name, 1024)
		out := make([]float32, 1024)
		b.Run(name+"/rlibm", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j, x := range xs {
					out[j] = rf(x)
				}
			}
			sink = out[0]
			reportBatchMetrics(b, 1024)
		})
		b.Run(name+"/rlibm-batch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bf2(out, xs)
			}
			sink = out[0]
			reportBatchMetrics(b, 1024)
		})
		for _, lib := range baselines.Float32Libraries {
			bf := baselines.Func32(lib, name)
			if bf == nil {
				continue
			}
			b.Run(name+"/"+string(lib), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for j, x := range xs {
						out[j] = bf(x)
					}
				}
				sink = out[0]
				reportBatchMetrics(b, 1024)
			})
		}
	}
}

// BenchmarkEvalSliceFuncs1024 is the per-function batch entry-point
// benchmark: every shipped float32 function through EvalSlice at the
// canonical width, reporting ns/value and values/s for benchstat
// tracking across the whole surface (not just the three §4.3
// headliners).
func BenchmarkEvalSliceFuncs1024(b *testing.B) {
	for _, name := range rlibm.Names() {
		xs := perf.Float32Inputs(name, 1024)
		out := make([]float32, 1024)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rlibm.EvalSlice(name, out, xs); err != nil {
					b.Fatal(err)
				}
			}
			sink = out[0]
			reportBatchMetrics(b, 1024)
		})
	}
}

// BenchmarkEvalSlice1024 measures the telemetry tax on the named batch
// entry point: Off is the default silent mode (one atomic pointer load
// per batch), On counts batches/values into registry counters. The
// acceptance bar is Off within 2% of On-never-enabled and zero
// allocations either way.
func BenchmarkEvalSlice1024(b *testing.B) {
	xs := perf.Float32Inputs("exp", 1024)
	out := make([]float32, 1024)
	b.Run("TelemetryOff", func(b *testing.B) {
		rlibm.DisableTelemetry()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rlibm.EvalSlice("exp", out, xs); err != nil {
				b.Fatal(err)
			}
		}
		sink = out[0]
		reportBatchMetrics(b, 1024)
	})
	b.Run("TelemetryOn", func(b *testing.B) {
		rlibm.EnableTelemetry(telemetry.NewRegistry())
		defer rlibm.DisableTelemetry()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rlibm.EvalSlice("exp", out, xs); err != nil {
				b.Fatal(err)
			}
		}
		sink = out[0]
		reportBatchMetrics(b, 1024)
	})
}

// TestEvalSliceTelemetryNoAllocs pins the zero-allocation contract of
// the batch path in both telemetry modes (the benchmark reports it;
// this fails the build if it regresses).
func TestEvalSliceTelemetryNoAllocs(t *testing.T) {
	xs := perf.Float32Inputs("exp", 1024)
	out := make([]float32, 1024)
	rlibm.DisableTelemetry()
	if n := testing.AllocsPerRun(100, func() { rlibm.EvalSlice("exp", out, xs) }); n != 0 {
		t.Errorf("telemetry off: %v allocs per EvalSlice batch, want 0", n)
	}
	rlibm.EnableTelemetry(telemetry.NewRegistry())
	defer rlibm.DisableTelemetry()
	if n := testing.AllocsPerRun(100, func() { rlibm.EvalSlice("exp", out, xs) }); n != 0 {
		t.Errorf("telemetry on: %v allocs per EvalSlice batch, want 0", n)
	}
}

// BenchmarkCheckOracle measures the oracle cost dominating Table 1/2
// generation and checking (the paper's "86% of total time is MPFR").
func BenchmarkCheckOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oracle.Float32(bigfp.Exp, 0.5+float64(i%1000)*1e-3)
	}
}
